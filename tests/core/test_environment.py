"""Fault-injection environments: masks, digests, parity, degradation.

The environment layer's whole value rests on four properties, each
pinned here:

(a) zero-intensity environments are **byte-identical** to no
    environment on every engine — the masked code path is always
    exercised, and an all-true mask must change nothing;
(b) scalar / batched / stream / stream-serial parity holds under every
    fault family on every workload generator the library ships;
(c) primary-user churn confined to channels *outside* a pair's common
    set never changes any TTR — faults off the rendezvous channels are
    invisible to the guarantee;
(d) environment digests are order-insensitive for commutative
    compositions and distinct otherwise.

Plus the acceptance gate: ``degradation_report`` is bit-identical
across all three engines for all three families on all eight workload
generators, and the whole layer is process-deterministic (replayed
under explicit ``PYTHONHASHSEED`` variation).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.core import batch
from repro.core.environment import (
    AsymmetricSensing,
    ComposedEnvironment,
    FadingMisses,
    PrimaryUserChurn,
    compose,
    effective_horizon,
    environment_digest,
    hash_uniform,
    parse_environment,
)
from repro.core.stream import ttr_sweep_stream, ttr_sweep_stream_serial
from repro.core.verification import (
    degradation_report,
    exhaustive_shift_range,
    ttr_for_shift,
)
from repro.sim.workloads import (
    adversarial_single_common,
    available_overlap,
    coalition_bands,
    nested,
    random_subsets,
    single_overlap,
    symmetric,
    whitespace,
)

# All eight workload generators, sized so every engine (the scalar
# reference included) sweeps them in test time.
WORKLOADS = {
    "random_subsets": lambda: random_subsets(12, 3, 3, seed=1),
    "single_overlap": lambda: single_overlap(12, 3, 3, seed=2),
    "symmetric": lambda: symmetric(12, 3, 2, seed=3),
    "coalition_bands": lambda: coalition_bands(
        24, band_width=6, agents_per_band=2, num_bands=2, overlap=2, seed=4
    ),
    "whitespace": lambda: whitespace(12, 3, incumbent_load=0.6, seed=5),
    "nested": lambda: nested(12, [2, 4], seed=6),
    "available_overlap": lambda: available_overlap(12, 3, 3, 0.5, seed=7),
    "adversarial_single_common": lambda: adversarial_single_common(
        12, 3, 3, seed=8
    ),
}

ENVIRONMENTS = {
    "fading": FadingMisses(0.2, seed=3),
    "pu-churn": PrimaryUserChurn(0.3, seed=5, dwell=16),
    "sensing": AsymmetricSensing(0.25, seed=7, side="b"),
}

SHIFTS = list(range(-30, 90)) + [997, -733]


def _pair_schedules(kind, algorithm="paper"):
    instance = WORKLOADS[kind]()
    i, j = instance.overlapping_pairs()[0]
    a = repro.build_schedule(instance.sets[i], instance.n, algorithm=algorithm)
    b = repro.build_schedule(instance.sets[j], instance.n, algorithm=algorithm)
    return a, b


def _scalar(a, b, shifts, horizon, environment=None):
    return {
        s: ttr_for_shift(a, b, s, horizon, environment=environment)
        for s in shifts
    }


def _all_engines(a, b, shifts, horizon, environment):
    """Profiles from every engine under one environment."""
    return {
        "scalar": _scalar(a, b, shifts, horizon, environment),
        "batched": batch.ttr_sweep(
            a, b, shifts, horizon, engine="batched", environment=environment
        ),
        "stream": ttr_sweep_stream(
            a, b, shifts, horizon, environment=environment
        ),
        "serial": ttr_sweep_stream_serial(
            a, b, shifts, horizon, environment=environment
        ),
    }


class TestHashUniform:
    def test_deterministic_and_uniform(self):
        slots = np.arange(20_000, dtype=np.int64)
        u1 = hash_uniform(0xABCD, slots)
        u2 = hash_uniform(0xABCD, slots)
        np.testing.assert_array_equal(u1, u2)
        assert 0.0 <= u1.min() and u1.max() < 1.0
        assert abs(float(u1.mean()) - 0.5) < 0.01

    def test_key_and_coordinates_matter(self):
        slots = np.arange(64, dtype=np.int64)
        assert not np.array_equal(
            hash_uniform(1, slots), hash_uniform(2, slots)
        )
        assert not np.array_equal(
            hash_uniform(1, slots), hash_uniform(1, slots + 1)
        )

    def test_negative_coordinates_wrap_deterministically(self):
        vals = hash_uniform(7, np.array([-1, -2], dtype=np.int64))
        again = hash_uniform(7, np.array([-1, -2], dtype=np.int64))
        np.testing.assert_array_equal(vals, again)


class TestZeroIntensity:
    """Property (a): zero intensity == no environment, byte-identical."""

    ZEROS = {
        "fading": FadingMisses(0.0, seed=9),
        "pu-churn": PrimaryUserChurn(0.0, seed=9, dwell=8),
        "sensing": AsymmetricSensing(0.0, seed=9, side="a"),
        "composed": compose(
            FadingMisses(0.0), PrimaryUserChurn(0.0), AsymmetricSensing(0.0)
        ),
    }

    @pytest.mark.parametrize("name", sorted(ZEROS))
    @pytest.mark.parametrize("kind", ["random_subsets", "whitespace"])
    def test_all_engines_match_clean(self, name, kind):
        a, b = _pair_schedules(kind)
        horizon = 4 * max(a.period, b.period)
        clean = _scalar(a, b, SHIFTS, horizon)
        for engine, profile in _all_engines(
            a, b, SHIFTS, horizon, self.ZEROS[name]
        ).items():
            assert profile == clean, (name, engine)

    def test_zero_mask_is_all_true(self):
        grid_c = np.arange(8, dtype=np.int64)[:, None]
        grid_s = np.arange(256, dtype=np.int64)[None, :]
        for env in self.ZEROS.values():
            assert bool(np.all(env.slot_mask(grid_c, grid_s)))


class TestEngineParityUnderEnvironments:
    """Property (b): every engine agrees under every fault family, on
    all eight workload generators."""

    @pytest.mark.parametrize("family", sorted(ENVIRONMENTS))
    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_parity(self, kind, family):
        a, b = _pair_schedules(kind)
        env = ENVIRONMENTS[family]
        horizon = 4 * max(a.period, b.period)
        profiles = _all_engines(a, b, SHIFTS, horizon, env)
        reference = profiles.pop("scalar")
        for engine, profile in profiles.items():
            assert profile == reference, (kind, family, engine)

    def test_parity_under_composition(self):
        a, b = _pair_schedules("single_overlap")
        env = compose(
            FadingMisses(0.1, seed=1), PrimaryUserChurn(0.2, seed=2, dwell=8)
        )
        horizon = 4 * max(a.period, b.period)
        profiles = _all_engines(a, b, SHIFTS, horizon, env)
        reference = profiles.pop("scalar")
        for engine, profile in profiles.items():
            assert profile == reference, engine

    def test_faulted_ttr_never_beats_clean(self):
        """Masks only remove coincidences: faulted TTR >= clean TTR."""
        a, b = _pair_schedules("symmetric")
        horizon = 4 * max(a.period, b.period)
        clean = _scalar(a, b, SHIFTS, horizon)
        for env in ENVIRONMENTS.values():
            faulted = batch.ttr_sweep(
                a, b, SHIFTS, horizon, environment=env
            )
            for shift in SHIFTS:
                if faulted[shift] is not None:
                    assert clean[shift] is not None
                    assert faulted[shift] >= clean[shift]


class TestChurnOutsideCommonSet:
    """Property (c): churn confined off the common channels is invisible."""

    @pytest.mark.parametrize(
        "kind", ["random_subsets", "adversarial_single_common", "nested"]
    )
    def test_ttr_unchanged(self, kind):
        instance = WORKLOADS[kind]()
        i, j = instance.overlapping_pairs()[0]
        a = repro.build_schedule(instance.sets[i], instance.n)
        b = repro.build_schedule(instance.sets[j], instance.n)
        common = instance.sets[i] & instance.sets[j]
        outside = tuple(sorted(set(range(instance.n)) - common))
        assert outside, "workload left no channels outside the common set"
        # rate=1.0: every scoped channel is busy in every window — the
        # strongest possible churn that still avoids the common set.
        env = PrimaryUserChurn(1.0, seed=11, dwell=4, channels=outside)
        horizon = 4 * max(a.period, b.period)
        clean = _scalar(a, b, SHIFTS, horizon)
        for engine, profile in _all_engines(
            a, b, SHIFTS, horizon, env
        ).items():
            assert profile == clean, engine

    def test_churn_on_common_channel_does_change_something(self):
        """Sanity check that the scoping (not a dead mask) carried (c)."""
        instance = WORKLOADS["adversarial_single_common"]()
        i, j = instance.overlapping_pairs()[0]
        a = repro.build_schedule(instance.sets[i], instance.n)
        b = repro.build_schedule(instance.sets[j], instance.n)
        common = tuple(sorted(instance.sets[i] & instance.sets[j]))
        env = PrimaryUserChurn(1.0, seed=11, dwell=4, channels=common)
        horizon = 4 * max(a.period, b.period)
        faulted = batch.ttr_sweep(a, b, SHIFTS, horizon, environment=env)
        assert all(ttr is None for ttr in faulted.values())


class TestDigests:
    """Property (d): order-insensitive for commutative compositions,
    distinct otherwise."""

    def test_composition_order_insensitive(self):
        f = FadingMisses(0.1, seed=1)
        c = PrimaryUserChurn(0.2, seed=2, dwell=8)
        s = AsymmetricSensing(0.3, seed=3)
        assert compose(f, c).digest() == compose(c, f).digest()
        assert compose(f, c, s).digest() == compose(s, f, c).digest()
        assert compose(f, compose(c, s)).digest() == compose(f, c, s).digest()

    def test_distinct_parameters_distinct_digests(self):
        base = FadingMisses(0.1, seed=1)
        assert base.digest() != FadingMisses(0.1, seed=2).digest()
        assert base.digest() != FadingMisses(0.2, seed=1).digest()
        assert (
            PrimaryUserChurn(0.1).digest()
            != PrimaryUserChurn(0.1, channels=(3,)).digest()
        )
        assert (
            AsymmetricSensing(0.1, side="a").digest()
            != AsymmetricSensing(0.1, side="b").digest()
        )

    def test_families_never_collide(self):
        digests = {env.digest() for env in ENVIRONMENTS.values()}
        assert len(digests) == len(ENVIRONMENTS)

    def test_composition_distinct_from_parts(self):
        f = FadingMisses(0.1, seed=1)
        c = PrimaryUserChurn(0.2, seed=2)
        assert compose(f, c).digest() not in (f.digest(), c.digest())

    def test_none_digest_is_empty(self):
        assert environment_digest(None) == ""
        assert environment_digest(FadingMisses(0.1)) != ""

    def test_spec_equality_and_hash(self):
        assert FadingMisses(0.25, seed=4) == FadingMisses(0.25, seed=4)
        assert FadingMisses(0.25, seed=4) != FadingMisses(0.25, seed=5)
        assert hash(FadingMisses(0.25, seed=4)) == hash(
            FadingMisses(0.25, seed=4)
        )


class TestParseEnvironment:
    def test_single_family(self):
        env = parse_environment("pu-churn:rate=0.1,seed=7")
        assert env == PrimaryUserChurn(0.1, seed=7)

    def test_composition_and_channels(self):
        env = parse_environment(
            "fading:p=0.05+pu-churn:rate=0.2,dwell=32,channels=1/4/9"
        )
        assert isinstance(env, ComposedEnvironment)
        assert env == compose(
            FadingMisses(0.05),
            PrimaryUserChurn(0.2, dwell=32, channels=(1, 4, 9)),
        )

    def test_sensing_side(self):
        assert parse_environment("sensing:p=0.2,side=a") == AsymmetricSensing(
            0.2, side="a"
        )

    def test_none_spellings(self):
        assert parse_environment(None) is None
        assert parse_environment("") is None
        assert parse_environment("none") is None

    @pytest.mark.parametrize(
        "bad",
        [
            "gremlins:p=0.1",
            "fading:p",
            "fading:p=abc",
            "pu-churn:rate=0.1,channels=x/y",
            "fading:wat=1",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_environment(bad)

    def test_validation_ranges(self):
        with pytest.raises(ValueError):
            FadingMisses(1.5)
        with pytest.raises(ValueError):
            PrimaryUserChurn(0.5, dwell=0)
        with pytest.raises(ValueError):
            AsymmetricSensing(0.5, side="c")
        with pytest.raises(ValueError):
            ComposedEnvironment([])


class TestEffectiveHorizon:
    def test_clean_clamps_to_joint(self):
        assert effective_horizon(10_000, 960, None) == 960
        assert effective_horizon(500, 960, None) == 500

    def test_aperiodic_forces_full_horizon(self):
        assert effective_horizon(10_000, 960, FadingMisses(0.1)) == 10_000
        assert (
            effective_horizon(10_000, 960, PrimaryUserChurn(0.1)) == 10_000
        )

    def test_periodic_mask_clamps_to_joint_lcm(self):
        # Static sensing masks have period 1: the clean early-stop holds.
        assert (
            effective_horizon(10_000, 960, AsymmetricSensing(0.1)) == 960
        )

    def test_composed_period(self):
        static = compose(AsymmetricSensing(0.1), AsymmetricSensing(0.1, side="a"))
        assert static.period == 1
        assert compose(AsymmetricSensing(0.1), FadingMisses(0.1)).period is None

    def test_periodic_miss_is_a_true_miss(self):
        """The period-1 early-stop is sound: a sensing mask that kills
        the only common channel misses at every horizon."""
        a = repro.build_schedule({0, 1}, 8)
        b = repro.build_schedule({1, 2}, 8)
        # Find a seed whose side-b error set swallows channel 1.
        seed = next(
            s
            for s in range(64)
            if not AsymmetricSensing(0.5, seed=s).slot_mask(
                np.array([1]), np.array([0])
            )[0]
        )
        env = AsymmetricSensing(0.5, seed=seed)
        short = batch.ttr_sweep(a, b, [0, 3], 10_000, environment=env)
        assert short == {0: None, 3: None}
        assert short == _scalar(a, b, [0, 3], 10_000, env)


class TestDegradationCertification:
    """Acceptance gate: reports bit-identical across the three engines,
    for all three families on all eight workload generators."""

    @pytest.mark.parametrize("family", sorted(ENVIRONMENTS))
    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_report_identical_across_engines(self, kind, family):
        a, b = _pair_schedules(kind, algorithm="zos")
        env = ENVIRONMENTS[family]
        bound = 3 * max(a.period, b.period)
        reports = [
            degradation_report(a, b, bound, env, engine=engine)
            for engine in ("scalar", "batched", "stream")
        ]
        assert reports[0] == reports[1] == reports[2], (kind, family)
        assert reports[0].environment_digest == env.digest()
        assert reports[0].total_shifts == len(
            list(exhaustive_shift_range(a, b))
        )

    def test_report_accounting(self):
        a, b = _pair_schedules("single_overlap")
        env = FadingMisses(0.3, seed=11)
        report = degradation_report(a, b, 2 * max(a.period, b.period), env)
        assert report.survived + len(report.lost_shifts) == report.total_shifts
        assert 0.0 <= report.survival_fraction <= 1.0
        assert report.ok == (not report.lost_shifts)
        assert report.inflation_max >= report.inflation_mean >= (
            1.0 if report.survived else 0.0
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["survival_fraction"] == report.survival_fraction

    def test_zero_intensity_report_is_perfect(self):
        a, b = _pair_schedules("symmetric")
        bound = 2 * max(a.period, b.period)
        report = degradation_report(a, b, bound, FadingMisses(0.0))
        assert report.survival_fraction == 1.0
        assert report.lost_shifts == ()
        assert report.inflation_max == 1.0
        assert report.faulted_worst == report.clean_worst


# One self-contained script replayed under different PYTHONHASHSEED
# values: everything the environment layer derives from Python-level
# hashing would diverge here if any crept in.
_DETERMINISM_SCRIPT = r"""
import hashlib, json
import numpy as np
import repro
from repro.core.environment import (
    AsymmetricSensing, FadingMisses, PrimaryUserChurn, compose,
    parse_environment,
)
from repro.core.results import pair_query, result_digest
from repro.core.verification import degradation_report

env = compose(
    FadingMisses(0.15, seed=3),
    PrimaryUserChurn(0.2, seed=5, dwell=16, channels=(1, 4)),
    AsymmetricSensing(0.1, seed=7, side="a"),
)
grid = env.slot_mask(
    np.arange(16, dtype=np.int64)[:, None],
    np.arange(4096, dtype=np.int64)[None, :],
)
mask_digest = hashlib.sha256(np.ascontiguousarray(grid).tobytes()).hexdigest()

query = pair_query(
    "paper", 12, [1, 2, 5], [2, 5, 9], 5000, 32, 32, 0, environment=env
)
a = repro.build_schedule({1, 2, 5}, 12)
b = repro.build_schedule({2, 5, 9}, 12)
report = degradation_report(a, b, 2000, FadingMisses(0.3, seed=11))
print(json.dumps({
    "mask": mask_digest,
    "env": env.digest(),
    "parsed": parse_environment("fading:p=0.05+pu-churn:rate=0.1").digest(),
    "query": result_digest(query),
    "report": report.to_dict(),
}, sort_keys=True))
"""


class TestProcessDeterminism:
    def test_identical_under_hashseed_variation(self):
        outputs = []
        for hashseed in ("0", "1", "31337"):
            proc = subprocess.run(
                [sys.executable, "-c", _DETERMINISM_SCRIPT],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": hashseed,
                },
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2]
        payload = json.loads(outputs[0])
        assert payload["env"] and payload["query"] and payload["mask"]
