"""Tests for the one-round orientation model."""

from __future__ import annotations

import pytest

from repro.oneround.orientation import (
    OneRoundInstance,
    brute_force_optimum,
    count_in_pairs,
    count_out_pairs,
)


def star(center: int, leaves: int) -> OneRoundInstance:
    return OneRoundInstance([(center, center + i + 1) for i in range(leaves)])


class TestInstance:
    def test_normalizes_edges(self):
        inst = OneRoundInstance([(3, 1), (2, 4)])
        assert inst.edges == ((1, 3), (2, 4))

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            OneRoundInstance([(1, 1)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            OneRoundInstance([(1, 2), (2, 1)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OneRoundInstance([])

    def test_incident_pair_count_star(self):
        # Star with 4 leaves: C(4,2) = 6 incident pairs at the center.
        assert star(0, 4).incident_pair_count() == 6

    def test_incident_pair_count_path(self):
        inst = OneRoundInstance([(0, 1), (1, 2), (2, 3)])
        assert inst.incident_pair_count() == 2


class TestCounting:
    def test_star_all_in(self):
        inst = star(0, 4)
        choices = (0, 0, 0, 0)
        assert count_in_pairs(inst, choices) == 6
        assert count_out_pairs(inst, choices) == 0

    def test_star_all_out(self):
        inst = star(0, 4)
        choices = (1, 2, 3, 4)
        assert count_in_pairs(inst, choices) == 0
        assert count_out_pairs(inst, choices) == 6

    def test_path_alternating(self):
        inst = OneRoundInstance([(0, 1), (1, 2)])
        # Both point at 1: in-pair.
        assert count_in_pairs(inst, (1, 1)) == 1
        # Point apart: out... edges (0,1)->0 and (1,2)->2: share vertex 1,
        # both away from it -> out-pair.
        assert count_in_pairs(inst, (0, 2)) == 0
        assert count_out_pairs(inst, (0, 2)) == 1

    def test_invalid_choice_rejected(self):
        inst = OneRoundInstance([(0, 1)])
        with pytest.raises(ValueError):
            count_in_pairs(inst, (2,))
        with pytest.raises(ValueError):
            count_in_pairs(inst, (0, 1))


class TestBruteForce:
    def test_star_optimum(self):
        best, choices = brute_force_optimum(star(0, 5))
        assert best == 10  # all edges into the center
        assert set(choices) == {0}

    def test_triangle_optimum(self):
        best, _ = brute_force_optimum(OneRoundInstance([(0, 1), (1, 2), (0, 2)]))
        # Best: two edges into one vertex -> 1 in-pair (third can't join).
        assert best == 1

    def test_limit_enforced(self):
        edges = [(0, i + 1) for i in range(21)]
        with pytest.raises(ValueError, match="brute force"):
            brute_force_optimum(OneRoundInstance(edges))
