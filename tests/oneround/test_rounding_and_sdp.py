"""Tests for the random baseline and the SDP approximation."""

from __future__ import annotations

import random

import pytest

from repro.oneround.orientation import (
    OneRoundInstance,
    brute_force_optimum,
    count_in_pairs,
)
from repro.oneround.random_rounding import best_of_random, random_orientation
from repro.oneround.sdp import OneRoundSDP, sdp_orient


def random_graph(num_vertices: int, num_edges: int, seed: int) -> OneRoundInstance:
    rng = random.Random(seed)
    edges = set()
    while len(edges) < num_edges:
        a, b = rng.sample(range(num_vertices), 2)
        edges.add((min(a, b), max(a, b)))
    return OneRoundInstance(sorted(edges))


class TestRandomRounding:
    def test_orientation_valid(self):
        inst = random_graph(8, 12, 0)
        choices = random_orientation(inst, seed=1)
        inst.validate_orientation(choices)

    def test_deterministic(self):
        inst = random_graph(8, 12, 0)
        assert random_orientation(inst, seed=5) == random_orientation(inst, seed=5)

    def test_best_of_random_improves(self):
        inst = random_graph(10, 20, 1)
        one, _ = best_of_random(inst, trials=1, seed=0)
        many, _ = best_of_random(inst, trials=64, seed=0)
        assert many >= one

    def test_expectation_about_quarter(self):
        """Mean in-pairs over many random orientations ~ incident/4."""
        inst = random_graph(12, 24, 2)
        total = 0
        trials = 400
        for t in range(trials):
            total += count_in_pairs(inst, random_orientation(inst, seed=t))
        mean = total / trials
        expected = inst.incident_pair_count() / 4
        assert 0.8 * expected <= mean <= 1.2 * expected

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            best_of_random(random_graph(4, 3, 0), trials=0)


class TestSDP:
    def test_sign_matrix_symmetric(self):
        inst = random_graph(8, 14, 3)
        solver = OneRoundSDP(inst)
        w = solver._sign_matrix()
        assert (w == w.T).all()

    def test_star_signs_positive(self):
        # All star edges point at the center under any orientation pair
        # classification: in/out aligned -> +1.
        inst = OneRoundInstance([(0, 1), (0, 2), (0, 3)])
        solver = OneRoundSDP(inst)
        w = solver._sign_matrix()
        off_diagonal = w[w != 0]
        assert (off_diagonal == 1).all()

    def test_objective_increases_under_solve(self):
        inst = random_graph(10, 18, 4)
        solver = OneRoundSDP(inst)
        import numpy as np

        rng = np.random.default_rng(0)
        init = rng.normal(size=(inst.num_edges, solver.dim))
        init /= np.linalg.norm(init, axis=1, keepdims=True)
        before = solver.objective(init)
        after = solver.objective(solver.solve(seed=0))
        assert after >= before - 1e-9

    def test_star_gets_optimum(self):
        inst = OneRoundInstance([(0, i) for i in range(1, 7)])
        best, choices = sdp_orient(inst, seed=0)
        optimum, _ = brute_force_optimum(inst)
        assert best == optimum == 15

    @pytest.mark.parametrize("seed", range(4))
    def test_approximation_ratio_on_small_graphs(self, seed):
        """Measured ratio must clear the 0.439 guarantee (it usually
        clears 0.9 on small graphs)."""
        inst = random_graph(9, 14, 100 + seed)
        optimum, _ = brute_force_optimum(inst)
        if optimum == 0:
            pytest.skip("degenerate instance")
        achieved, choices = sdp_orient(inst, trials=48, seed=seed)
        inst.validate_orientation(choices)
        assert achieved >= 0.439 * optimum

    def test_sdp_beats_or_matches_single_random(self):
        inst = random_graph(12, 24, 9)
        sdp_value, _ = sdp_orient(inst, seed=1)
        rand_value = count_in_pairs(inst, random_orientation(inst, seed=1))
        assert sdp_value >= rand_value
