"""Tests for the AsyncETCH baseline (after Zhang-Li-Yu-Wang, anonymized)."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines.asyncetch import (
    AsyncETCHSchedule,
    asyncetch_global_block,
    asyncetch_global_channel,
    asyncetch_period,
)
from repro.core.batch import ttr_sweep
from repro.core.verification import (
    exhaustive_shift_range,
    ttr_for_shift,
    verify_guarantee,
)
from repro.sim.workloads import adversarial_single_common, available_overlap


class TestGlobalSequence:
    def test_period_formula(self):
        s = AsyncETCHSchedule([1, 2], 8)
        assert s.prime == 11
        assert s.period == asyncetch_period(11) == 24 * 11 * 10

    def test_frame_anatomy(self):
        """Anchor, stay, then two identical orbit subframes."""
        p = 11
        frame = [asyncetch_global_channel(t, p) for t in range(2 * p + 2)]
        assert frame[0] == 0  # anchor pilot
        assert frame[1] == 1  # stay pilot: frame 0 has step 1
        assert frame[2 : 2 + p] == frame[2 + p : 2 + 2 * p]  # dual subframes
        assert sorted(frame[2 : 2 + p]) == list(range(p))  # full orbit

    def test_step_and_start_loops(self):
        """Step cycles 1..P-1 per frame; start advances every P-1 frames."""
        p = 11
        frame_len = 2 * p + 2
        stays = [
            asyncetch_global_channel(r * frame_len + 1, p) for r in range(2 * (p - 1))
        ]
        assert stays == list(range(1, p)) * 2
        starts = [
            asyncetch_global_channel(r * frame_len + 2, p)
            for r in range(0, p * (p - 1), p - 1)
        ]
        assert starts == list(range(p))

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            asyncetch_global_channel(-1, 11)

    def test_vectorized_block_matches_scalar(self):
        p = 11
        period = asyncetch_period(p)
        for lo, hi in [(0, 200), (period - 50, period + 75), (1234, 1234)]:
            block = asyncetch_global_block(lo, hi, p)
            scalar = [asyncetch_global_channel(t % period, p) for t in range(lo, hi)]
            assert block.tolist() == scalar


class TestSchedule:
    def test_plays_only_available_channels(self):
        s = AsyncETCHSchedule([3, 6, 11], 16)
        window = s.materialize(0, 2000)
        assert set(int(c) for c in window) <= {3, 6, 11}

    def test_period_array_matches_scalar(self):
        for channels in ([0, 1], [3, 7], [5]):
            s = AsyncETCHSchedule(channels, 8)
            table = s.period_table()
            scalar = np.array([s.channel_at(t) for t in range(s.period)])
            assert (table == scalar).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncETCHSchedule([], 8)
        with pytest.raises(ValueError):
            AsyncETCHSchedule([8], 8)
        with pytest.raises(ValueError):
            AsyncETCHSchedule([-1], 8)


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(6))
    def test_guaranteed_rendezvous_exhaustive(self, seed):
        rng = random.Random(100 + seed)
        n = rng.choice([8, 16])
        a_set = set(rng.sample(range(n), rng.randint(1, 4)))
        b_set = set(rng.sample(range(n), rng.randint(1, 4)))
        if not a_set & b_set:
            b_set.add(next(iter(a_set)))
        a, b = AsyncETCHSchedule(a_set, n), AsyncETCHSchedule(b_set, n)
        ok, worst, failing = verify_guarantee(
            a, b, math.lcm(a.period, b.period), shifts=exhaustive_shift_range(a, b)
        )
        assert ok, (sorted(a_set), sorted(b_set), failing)
        assert worst >= 0

    def test_equal_step_shift_classes_meet(self):
        """Shifts that are whole multiples of (P-1) frames leave both
        agents on the *same* step forever — the case the published
        multi-row argument never faces, covered here by the anchor/stay
        pilot pair."""
        a = AsyncETCHSchedule([0, 3], 8)
        b = AsyncETCHSchedule([3, 5], 8)
        p = a.prime
        frame_len = 2 * p + 2
        aligned = [d * frame_len * (p - 1) for d in range(1, 6)]
        profile = ttr_sweep(a, b, aligned, a.period)
        assert all(t is not None for t in profile.values()), profile

    def test_single_common_channel_pairs(self):
        inst = adversarial_single_common(16, 3, 3, seed=1)
        schedules = [AsyncETCHSchedule(s, inst.n) for s in inst.sets]
        for i, j in inst.overlapping_pairs():
            a, b = schedules[i], schedules[j]
            ok, _, failing = verify_guarantee(
                a, b, math.lcm(a.period, b.period),
                shifts=exhaustive_shift_range(a, b),
            )
            assert ok, (i, j, failing)

    def test_disjoint_sets_never_meet(self):
        a, b = AsyncETCHSchedule([1, 3], 16), AsyncETCHSchedule([2, 4], 16)
        assert ttr_for_shift(a, b, 0, math.lcm(a.period, b.period)) is None


class TestBatchedParity:
    @pytest.mark.parametrize("rho", [0.0, 1.0])
    def test_scalar_vs_batched(self, rho):
        inst = available_overlap(16, 3, 2, rho=rho, seed=5)
        i, j = inst.overlapping_pairs()[0]
        a = AsyncETCHSchedule(inst.sets[i], inst.n)
        b = AsyncETCHSchedule(inst.sets[j], inst.n)
        shifts = list(range(-40, 120, 3))
        horizon = 2 * max(a.period, b.period)
        profile = ttr_sweep(a, b, shifts, horizon)
        for shift in shifts:
            assert profile[shift] == ttr_for_shift(a, b, shift, horizon)
