"""Tests for the baseline registry and the top-level build_schedule API."""

from __future__ import annotations

import pytest

import repro
from repro.baselines import (
    BASELINE_NAMES,
    DETERMINISTIC_BASELINES,
    build_baseline,
)
from repro.baselines.asyncetch import AsyncETCHSchedule
from repro.baselines.crseq import CRSEQSchedule
from repro.baselines.drds import DRDSSchedule
from repro.baselines.jump_stay import JumpStaySchedule
from repro.baselines.random_schedule import RandomSchedule
from repro.baselines.zos import ZOSSchedule
from repro.core.epoch import EpochSchedule
from repro.core.symmetric import SymmetricWrappedSchedule


class TestRegistry:
    def test_names(self):
        assert set(BASELINE_NAMES) == {
            "crseq", "jump-stay", "drds", "zos", "async-etch", "random",
        }

    def test_deterministic_subset(self):
        assert set(DETERMINISTIC_BASELINES) == set(BASELINE_NAMES) - {"random"}

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("crseq", CRSEQSchedule),
            ("jump-stay", JumpStaySchedule),
            ("drds", DRDSSchedule),
            ("zos", ZOSSchedule),
            ("async-etch", AsyncETCHSchedule),
            ("random", RandomSchedule),
        ],
    )
    def test_dispatch(self, name, cls):
        schedule = build_baseline([1, 3], 8, name)
        assert isinstance(schedule, cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_baseline([1], 8, "quantum")


class TestBuildSchedule:
    def test_default_is_paper(self):
        assert isinstance(repro.build_schedule([1, 2], 8), EpochSchedule)

    def test_paper_sync(self):
        s = repro.build_schedule([1, 2], 8, algorithm="paper-sync")
        assert isinstance(s, EpochSchedule)
        assert not s.asynchronous

    def test_paper_symmetric(self):
        s = repro.build_schedule([1, 2], 8, algorithm="paper-symmetric")
        assert isinstance(s, SymmetricWrappedSchedule)

    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_baselines_via_top_level(self, name):
        s = repro.build_schedule([1, 2], 8, algorithm=name)
        assert s.channels == {1, 2}

    def test_cross_algorithm_rendezvous_not_guaranteed_but_api_works(self):
        """Different algorithms produce valid schedules over the right sets."""
        for name in BASELINE_NAMES:
            s = repro.build_schedule([2, 5, 7], 16, algorithm=name)
            window = s.materialize(0, 500)
            assert set(int(c) for c in window) <= {2, 5, 7}
