"""Tests for the Jump-Stay baseline (Lin-Liu-Chu-Leung)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.jump_stay import JumpStaySchedule, jump_stay_global_channel
from repro.core.verification import ttr_for_shift


class TestGlobalSequence:
    def test_stay_phase_plays_step(self):
        prime = 5
        # Round 0: step r = 1; stay slots (offsets 2P..3P-1) play 1.
        for offset in range(2 * prime, 3 * prime):
            assert jump_stay_global_channel(offset, prime) == 1

    def test_jump_phase_linear(self):
        prime = 5
        # Round 1: step r = 2, start i = 0: jump j plays (0 + 2j) mod 5.
        base = 3 * prime
        for j in range(2 * prime):
            assert jump_stay_global_channel(base + j, prime) == (2 * j) % prime

    def test_step_cycles_through_all(self):
        prime = 7
        steps = set()
        for round_index in range(prime - 1):
            t = round_index * 3 * prime + 2 * prime  # a stay slot
            steps.add(jump_stay_global_channel(t, prime))
        assert steps == set(range(1, prime))

    def test_jump_covers_all_channels_each_round(self):
        prime = 7
        for round_index in range(prime - 1):
            base = round_index * 3 * prime
            seen = {
                jump_stay_global_channel(base + j, prime) for j in range(2 * prime)
            }
            assert seen == set(range(prime))

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            jump_stay_global_channel(-5, 5)


class TestSchedule:
    def test_prime_strictly_greater(self):
        assert JumpStaySchedule([0], 5).prime == 7
        assert JumpStaySchedule([0], 6).prime == 7

    def test_projection(self):
        s = JumpStaySchedule([3, 6], 8)
        window = s.materialize(0, 10_000)
        assert set(int(c) for c in window) <= {3, 6}

    def test_period_is_cubic(self):
        s = JumpStaySchedule([0, 1], 4)
        p = s.prime
        assert s.period == 3 * p * p * (p - 1)

    @pytest.mark.parametrize("seed", range(5))
    def test_guaranteed_rendezvous_sampled_shifts(self, seed):
        rng = random.Random(200 + seed)
        n = 6
        common = rng.randrange(n)
        rest = [c for c in range(n) if c != common]
        a_set = {common} | set(rng.sample(rest, rng.randint(0, 2)))
        b_set = {common} | set(rng.sample(rest, rng.randint(0, 2)))
        a, b = JumpStaySchedule(a_set, n), JumpStaySchedule(b_set, n)
        bound = 2 * a.period
        shifts = list(range(0, 30)) + [rng.randrange(a.period) for _ in range(10)]
        for shift in shifts:
            assert ttr_for_shift(a, b, shift, bound) is not None, (
                a_set,
                b_set,
                shift,
            )

    def test_symmetric_meets_within_linear_time(self):
        """JS's selling point: symmetric rendezvous in O(P) slots."""
        n = 8
        a = JumpStaySchedule([1, 4, 6], n)
        b = JumpStaySchedule([1, 4, 6], n)
        worst = 0
        for shift in range(0, 60):
            ttr = ttr_for_shift(a, b, shift, a.period)
            assert ttr is not None
            worst = max(worst, ttr)
        # O(P) with small constant; generous envelope.
        assert worst <= 9 * a.prime

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            JumpStaySchedule([-1], 8)
        with pytest.raises(ValueError):
            JumpStaySchedule([], 8)
