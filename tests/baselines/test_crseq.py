"""Tests for the CRSEQ baseline (Shin-Yang-Kim)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.crseq import CRSEQSchedule, crseq_global_channel
from repro.core.primes import smallest_prime_at_least
from repro.core.verification import ttr_for_shift


class TestGlobalSequence:
    def test_stay_phase(self):
        prime = 5
        # Subsequence i, offsets 2P..3P-1 stay on channel i.
        for i in range(prime):
            for offset in range(2 * prime, 3 * prime):
                assert crseq_global_channel(i * 3 * prime + offset, prime) == i

    def test_jump_phase_triangular(self):
        prime = 5
        # Subsequence 2 (T_2 = 3): jump slots play (3 + j) mod 5.
        base = 2 * 3 * prime
        for j in range(2 * prime):
            assert crseq_global_channel(base + j, prime) == (3 + j) % prime

    def test_jump_phase_sweeps_all_channels(self):
        prime = 7
        for i in range(prime):
            base = i * 3 * prime
            seen = {crseq_global_channel(base + j, prime) for j in range(prime)}
            assert seen == set(range(prime))

    def test_period(self):
        prime = 5
        period = 3 * prime * prime
        for t in range(0, 200):
            assert crseq_global_channel(t, prime) == crseq_global_channel(
                t + period, prime
            )

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            crseq_global_channel(-1, 5)


class TestSchedule:
    def test_prime_selection(self):
        assert CRSEQSchedule([0], 5).prime == 5
        assert CRSEQSchedule([0], 6).prime == 7

    def test_projection_into_available_set(self):
        s = CRSEQSchedule([1, 4], 8)
        window = s.materialize(0, s.period)
        assert set(int(c) for c in window) <= {1, 4}

    def test_period_is_3p_squared(self):
        n = 11
        s = CRSEQSchedule([0, 1], n)
        assert s.period == 3 * s.prime * s.prime

    @pytest.mark.parametrize("seed", range(5))
    def test_guaranteed_rendezvous_sampled_shifts(self, seed):
        rng = random.Random(seed)
        n = 8
        common = rng.randrange(n)
        rest = [c for c in range(n) if c != common]
        a_set = {common} | set(rng.sample(rest, rng.randint(0, 3)))
        b_set = {common} | set(rng.sample(rest, rng.randint(0, 3)))
        a, b = CRSEQSchedule(a_set, n), CRSEQSchedule(b_set, n)
        bound = 2 * a.period  # O(n^2)-class guarantee with slack
        shifts = list(range(0, 40)) + [rng.randrange(a.period) for _ in range(20)]
        for shift in shifts:
            assert ttr_for_shift(a, b, shift, bound) is not None, (
                a_set,
                b_set,
                shift,
            )

    def test_symmetric_rendezvous(self):
        n = 8
        a = CRSEQSchedule([2, 5], n)
        b = CRSEQSchedule([2, 5], n)
        for shift in range(0, 3 * a.prime * 2):
            assert ttr_for_shift(a, b, shift, 2 * a.period) is not None

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            CRSEQSchedule([8], 8)
        with pytest.raises(ValueError):
            CRSEQSchedule([], 8)
