"""Tests for the DRDS-style baseline.

The defining property — every ``D_i`` is a relaxed difference set of
``Z_m`` and the family is disjoint — is verified exhaustively for a range
of universe sizes; the rendezvous guarantee it implies is then checked at
the schedule level for *all* shifts on a small instance.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.drds import (
    DRDSSchedule,
    _component_indices,
    build_global_sequence,
    difference_coverage,
    sequence_period,
)
from repro.core.verification import ttr_for_shift


class TestDifferenceCoverage:
    def test_trivial_full_set(self):
        assert difference_coverage(np.arange(6), 6).all()

    def test_single_element_covers_only_zero(self):
        mask = difference_coverage(np.array([3]), 8)
        assert mask[0]
        assert mask.sum() == 1

    def test_known_difference_set(self):
        # {0, 1, 3} is a perfect difference set of Z_7.
        assert difference_coverage(np.array([0, 1, 3]), 7).all()


class TestFamilyProperties:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
    def test_components_disjoint(self, n):
        m = sequence_period(n)
        seen = np.zeros(m, dtype=bool)
        for i in range(n):
            idx = _component_indices(i, n)
            assert idx.max() < m
            assert not seen[idx].any(), f"collision for channel {i}"
            seen[idx] = True

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 12])
    def test_built_family_is_relaxed_difference_set(self, n):
        build_global_sequence.cache_clear()
        sequence = build_global_sequence(n)
        m = sequence_period(n)
        assert len(sequence) == m
        for i in range(n):
            owned = np.flatnonzero(sequence == i)
            # Owned slots include fillers; restrict to the verified core
            # is unnecessary — more elements only add differences.
            assert difference_coverage(owned, m).all(), f"channel {i} not a RDS"

    def test_stride_band_drift_free(self):
        """SA_i - B_i covers the same band for every channel."""
        n = 6
        m = sequence_period(n)
        for i in range(n):
            idx = _component_indices(i, n)
            block = idx[: 4 * n]
            stride = idx[4 * n : 9 * n]
            diffs = (stride[:, None] - block[None, :]).ravel() % m
            got = np.zeros(m, dtype=bool)
            got[diffs] = True
            band = np.arange(4 * n * n + 1, 20 * n * n)
            assert got[band].all(), f"channel {i} missing stride band"

    def test_occupancy_at_most_half(self):
        n = 8
        sequence = build_global_sequence(n)
        m = sequence_period(n)
        # Reconstruct core ownership: filler slots are (t mod n) on slots
        # not in any component; count components + patches via rebuild.
        core = sum(len(_component_indices(i, n)) for i in range(n))
        assert core <= m // 2


class TestSchedule:
    def test_projection(self):
        s = DRDSSchedule([1, 5], 8)
        window = s.materialize(0, 2000)
        assert set(int(c) for c in window) <= {1, 5}

    def test_period(self):
        s = DRDSSchedule([0], 4)
        assert s.period == sequence_period(4)

    def test_guarantee_all_shifts_small_instance(self):
        """The DRDS property implies rendezvous within one period for
        EVERY shift — certified exhaustively for n = 4."""
        n = 4
        rng = random.Random(3)
        m = sequence_period(n)
        for _ in range(4):
            common = rng.randrange(n)
            a_set = {common} | {rng.randrange(n)}
            b_set = {common} | {rng.randrange(n)}
            a, b = DRDSSchedule(a_set, n), DRDSSchedule(b_set, n)
            for shift in range(0, m, 7):  # stride the full period
                assert ttr_for_shift(a, b, shift, m + 1) is not None, (
                    a_set,
                    b_set,
                    shift,
                )

    def test_native_common_channel_rendezvous_bound(self):
        """Both agents natively play a common channel c within one period
        at any shift (the RDS argument, end to end)."""
        n = 5
        m = sequence_period(n)
        sequence = build_global_sequence(n)
        c = 2
        slots = np.flatnonzero(sequence == c)
        mask = difference_coverage(slots, m)
        assert mask.all()

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            DRDSSchedule([], 4)
        with pytest.raises(ValueError):
            DRDSSchedule([4], 4)


class TestBuildValidation:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            build_global_sequence(0)

    def test_cache_returns_same_object(self):
        a = build_global_sequence(6)
        b = build_global_sequence(6)
        assert a is b
