"""Tests for the ZOS baseline (after Lin-Yu-Liu-Leung-Chu)."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.baselines.zos import (
    ZOSSchedule,
    collision_free_modulus,
    zos_period,
)
from repro.core.batch import ttr_sweep
from repro.core.verification import (
    exhaustive_shift_range,
    ttr_for_shift,
    verify_guarantee,
)
from repro.sim.workloads import adversarial_single_common, available_overlap


class TestCollisionFreeModulus:
    def test_prime_exceeds_set_size(self):
        assert collision_free_modulus([4]) == 2
        assert collision_free_modulus([0, 1]) == 3
        assert collision_free_modulus([3, 17, 40]) == 5

    def test_skips_colliding_primes(self):
        # {0, 5, 10, 15} all collide mod 5; 7 separates them.
        assert collision_free_modulus([0, 5, 10, 15]) == 7

    def test_distinctness_holds(self):
        rng = random.Random(0)
        for _ in range(50):
            channels = rng.sample(range(200), rng.randint(1, 12))
            p = collision_free_modulus(channels)
            assert p > len(channels)
            assert len({c % p for c in channels}) == len(channels)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collision_free_modulus([])


class TestSchedule:
    def test_period_formula(self):
        s = ZOSSchedule([3, 17, 40], 64)
        assert s.period == zos_period(s.prime) == 4 * 5 * 5 * 4

    def test_period_independent_of_universe(self):
        small = ZOSSchedule([3, 17, 40], 64)
        huge = ZOSSchedule([3, 17, 40], 1 << 20)
        assert small.period == huge.period == 400

    def test_plays_only_available_channels(self):
        s = ZOSSchedule([3, 6, 11], 16)
        window = s.materialize(0, s.period)
        assert set(int(c) for c in window) <= {3, 6, 11}

    def test_subsequence_structure(self):
        s = ZOSSchedule([1, 2, 5], 8)
        p = s.prime
        # Z-subsequence: first p slots of every round hold the anchor.
        anchors = {s.channel_at(k * 4 * p + j) for k in range(3) for j in range(p)}
        assert len(anchors) == 1
        # S-subsequence of round 0 (rate 1): constant channel.
        stays = {s.channel_at(3 * p + j) for j in range(p)}
        assert len(stays) == 1
        # O-subsequence of round 0 covers every available channel natively.
        orbit = {s.channel_at(p + j) for j in range(2 * p)}
        assert orbit == {1, 2, 5}

    def test_period_array_matches_scalar(self):
        for channels in ([0, 1], [3, 17, 40], [5], [0, 5, 10, 15]):
            s = ZOSSchedule(channels, 64)
            table = s.period_table()
            scalar = np.array([s.channel_at(t) for t in range(s.period)])
            assert (table == scalar).all()

    def test_singleton_constant(self):
        s = ZOSSchedule([9], 16)
        assert set(s.materialize(0, s.period).tolist()) == {9}

    def test_validation(self):
        with pytest.raises(ValueError):
            ZOSSchedule([], 8)
        with pytest.raises(ValueError):
            ZOSSchedule([8], 8)
        with pytest.raises(ValueError):
            ZOSSchedule([-1], 8)


class TestGuarantee:
    def test_lockstep_translation_pair(self):
        """Same modulus, zero shift: the case index-keyed local hopping
        gets wrong forever; ZOS meets through the global residue keys."""
        a, b = ZOSSchedule([0, 1], 8), ZOSSchedule([1, 2], 8)
        assert a.prime == b.prime
        ok, worst, failing = verify_guarantee(
            a, b, math.lcm(a.period, b.period), shifts=exhaustive_shift_range(a, b)
        )
        assert ok, f"missed at shift {failing}"
        assert worst < a.period

    @pytest.mark.parametrize("seed", range(6))
    def test_guaranteed_rendezvous_exhaustive(self, seed):
        rng = random.Random(300 + seed)
        n = rng.choice([16, 32, 64])
        a_set = set(rng.sample(range(n), rng.randint(1, 5)))
        b_set = set(rng.sample(range(n), rng.randint(1, 5)))
        if not a_set & b_set:
            b_set.add(next(iter(a_set)))
        a, b = ZOSSchedule(a_set, n), ZOSSchedule(b_set, n)
        ok, worst, failing = verify_guarantee(
            a, b, math.lcm(a.period, b.period), shifts=exhaustive_shift_range(a, b)
        )
        assert ok, (sorted(a_set), sorted(b_set), failing)
        assert worst >= 0

    def test_single_common_channel_pairs(self):
        inst = adversarial_single_common(32, 4, 3, seed=1)
        schedules = [ZOSSchedule(s, inst.n) for s in inst.sets]
        for i, j in inst.overlapping_pairs():
            a, b = schedules[i], schedules[j]
            ok, _, failing = verify_guarantee(
                a, b, math.lcm(a.period, b.period),
                shifts=exhaustive_shift_range(a, b),
            )
            assert ok, (i, j, failing)

    def test_symmetric_meets_quickly(self):
        """Equal sets: the shared orbit aligns within a few rounds."""
        a = ZOSSchedule([2, 9, 13], 16)
        b = ZOSSchedule([2, 9, 13], 16)
        worst = 0
        for shift in range(0, a.period, 7):
            ttr = ttr_for_shift(a, b, shift, a.period)
            assert ttr is not None
            worst = max(worst, ttr)
        assert worst <= 4 * a.prime * a.prime

    def test_disjoint_sets_never_meet(self):
        a, b = ZOSSchedule([1, 3], 16), ZOSSchedule([2, 4], 16)
        assert ttr_for_shift(a, b, 0, math.lcm(a.period, b.period)) is None


class TestBatchedParity:
    @pytest.mark.parametrize("rho", [0.0, 0.5, 1.0])
    def test_scalar_vs_batched_on_available_overlap(self, rho):
        inst = available_overlap(32, 4, 3, rho=rho, seed=5)
        i, j = inst.overlapping_pairs()[0]
        a = ZOSSchedule(inst.sets[i], inst.n)
        b = ZOSSchedule(inst.sets[j], inst.n)
        shifts = list(range(-40, 120, 3))
        horizon = 4 * max(a.period, b.period)
        profile = ttr_sweep(a, b, shifts, horizon)
        for shift in shifts:
            assert profile[shift] == ttr_for_shift(a, b, shift, horizon)

    def test_scalar_vs_batched_on_single_common(self):
        inst = adversarial_single_common(48, 5, 2, seed=8)
        a = ZOSSchedule(inst.sets[0], inst.n)
        b = ZOSSchedule(inst.sets[1], inst.n)
        shifts = [0, 1, 17, -3, 999, a.period, -b.period + 5]
        horizon = math.lcm(a.period, b.period)
        profile = ttr_sweep(a, b, shifts, horizon)
        for shift in shifts:
            assert profile[shift] == ttr_for_shift(a, b, shift, horizon)
