"""Tests for the naive randomized baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.random_schedule import RandomSchedule
from repro.core.verification import ttr_for_shift


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomSchedule([], 8)

    def test_rejects_out_of_universe(self):
        with pytest.raises(ValueError):
            RandomSchedule([9], 8)

    def test_rejects_bad_tape(self):
        with pytest.raises(ValueError):
            RandomSchedule([1], 8, tape_length=0)

    def test_deterministic_given_seed(self):
        a = RandomSchedule([1, 3, 5], 8, seed=42)
        b = RandomSchedule([1, 3, 5], 8, seed=42)
        assert list(a.materialize(0, 200)) == list(b.materialize(0, 200))

    def test_different_seeds_differ(self):
        a = RandomSchedule([1, 3, 5], 8, seed=1)
        b = RandomSchedule([1, 3, 5], 8, seed=2)
        assert list(a.materialize(0, 200)) != list(b.materialize(0, 200))

    def test_only_own_channels(self):
        s = RandomSchedule([2, 4], 8, seed=0)
        assert set(np.unique(s.materialize(0, 1000))) <= {2, 4}


class TestDistribution:
    def test_roughly_uniform(self):
        s = RandomSchedule([0, 1, 2, 3], 8, seed=7, tape_length=40_000)
        window = s.materialize(0, 40_000)
        counts = np.bincount(window, minlength=4)
        assert counts.min() > 0.2 * 40_000  # each ~25%

    def test_expected_ttr_scales_with_overlap(self):
        """Sanity: random pairs with 1 common channel out of k each meet
        in about k*l slots on average."""
        n, k = 16, 4
        trials = []
        for seed in range(40):
            a = RandomSchedule([0, 1, 2, 3], n, seed=seed)
            b = RandomSchedule([0, 4, 5, 6], n, seed=1000 + seed)
            ttr = ttr_for_shift(a, b, 0, 10_000)
            assert ttr is not None
            trials.append(ttr)
        mean = sum(trials) / len(trials)
        # Single shared channel, k = l = 4: geometric with p = 1/16.
        assert 4 <= mean <= 64
